"""Sweep-service tests: supervisor, coalescing, checkpoint, sharding.

Fault-injection tests here use toy runners and sub-second heartbeat
policies so the whole file stays tier-1 fast; the full chaos drill
(real simulations, concurrent clients, mid-sweep server kill) runs as
``test_chaos_drill_full`` under the ``slow`` marker and in the CI
``chaos-smoke`` lane.
"""

import asyncio
import json
import time

import pytest

from repro.machine import l0_config, unified_config
from repro.pipeline import (
    RequestError,
    ResultCache,
    RunRequest,
    SerialExecutor,
    Session,
    ShardedKeyedFileStore,
    detect_shard_width,
)
from repro.service import (
    Fault,
    FaultPlan,
    JobFailureError,
    RetryPolicy,
    SupervisedExecutor,
    Supervisor,
    SweepCheckpoint,
    degrade_request,
    requests_from_spec,
    run_drill,
    sweep_spec,
    truncate_entry,
)
from repro.service.retry import JobFailure
from repro.sim.runner import SimOptions

#: Fast-reflex policy for toy-runner fault tests.
FAST = RetryPolicy(
    max_attempts=4,
    timeout_s=10.0,
    heartbeat_timeout_s=0.5,
    heartbeat_interval_s=0.05,
    base_delay_s=0.01,
    max_delay_s=0.05,
)


def toy_runner(payload, fault):
    """Module-level worker fn: double the payload, or raise on 'boom'."""
    if payload == "boom":
        raise ValueError("kaboom")
    return payload * 2


def toy_double(value):
    return value * 2


# ----------------------------------------------------------------------
# Supervisor
# ----------------------------------------------------------------------


def test_supervisor_completes_jobs_in_any_submission_order():
    async def main():
        async with Supervisor(toy_runner, workers=2, policy=FAST) as sup:
            futures = [sup.submit(f"k{i}", i) for i in range(8)]
            return await asyncio.gather(*futures), sup.stats

    results, stats = asyncio.run(main())
    assert results == [i * 2 for i in range(8)]
    assert stats.completed == 8
    assert stats.duplicate_simulations == 0
    assert not stats.dead


def test_supervisor_restarts_sigkilled_worker_and_requeues_job():
    plan = FaultPlan(seed=0, by_dispatch=((0, Fault("kill")),))

    async def main():
        async with Supervisor(toy_runner, workers=2, policy=FAST, faults=plan) as sup:
            futures = [sup.submit(f"k{i}", i) for i in range(4)]
            return await asyncio.gather(*futures), sup.stats

    results, stats = asyncio.run(main())
    assert results == [0, 2, 4, 6]
    assert stats.crashes == 1
    assert stats.restarts >= 1
    assert stats.retries >= 1
    assert stats.duplicate_simulations == 0


def test_supervisor_watchdog_kills_hung_worker():
    # The hang sleeps silently past the 0.5 s heartbeat timeout; the
    # watchdog must kill the wedged worker and retry its job elsewhere.
    plan = FaultPlan(seed=0, by_dispatch=((1, Fault("hang", seconds=5.0)),))

    async def main():
        async with Supervisor(toy_runner, workers=2, policy=FAST, faults=plan) as sup:
            futures = [sup.submit(f"k{i}", i) for i in range(4)]
            return await asyncio.gather(*futures), sup.stats

    start = time.monotonic()
    results, stats = asyncio.run(main())
    assert results == [0, 2, 4, 6]
    assert stats.hung == 1
    assert stats.restarts >= 1
    # Recovery must come from the watchdog, not from the hang expiring.
    assert time.monotonic() - start < 5.0


def test_poisoned_job_dead_letters_and_queue_keeps_flowing():
    async def main():
        async with Supervisor(toy_runner, workers=2, policy=FAST) as sup:
            good = [sup.submit(f"k{i}", i) for i in range(4)]
            bad = sup.submit("poison", "boom", {"benchmark": "toy"})
            results = await asyncio.gather(*good)
            with pytest.raises(JobFailureError) as excinfo:
                await bad
            return results, excinfo.value.failure, sup.stats

    results, failure, stats = asyncio.run(main())
    assert results == [0, 2, 4, 6]
    assert failure.key == "poison"
    assert failure.kind == "error"
    assert failure.attempts == 1  # errors are terminal by default
    assert failure.description == {"benchmark": "toy"}
    assert "kaboom" in failure.detail
    assert stats.completed == 4


def test_supervisor_degradation_ladder_rewrites_payload():
    def degrade(payload, failure, applied):
        if payload == "boom" and "fallback" not in applied:
            return "rescued", "fallback"
        return None

    async def main():
        async with Supervisor(
            toy_runner, workers=1, policy=FAST, degrade=degrade
        ) as sup:
            return await sup.submit("job", "boom"), sup.stats

    result, stats = asyncio.run(main())
    assert result == "rescuedrescued"  # toy runner doubles the payload
    assert stats.degraded == {"job": ("fallback",)}
    assert not stats.dead


def test_supervisor_rejects_duplicate_active_keys():
    async def main():
        async with Supervisor(toy_runner, workers=1, policy=FAST) as sup:
            sup.submit("dup", 1)
            with pytest.raises(ValueError, match="already active"):
                sup.submit("dup", 2)

    asyncio.run(main())


# ----------------------------------------------------------------------
# Degradation ladder (request-level hook)
# ----------------------------------------------------------------------


def test_degrade_request_exact_deadline_falls_back_to_sms():
    request = RunRequest("g721dec", l0_config(8), SimOptions(scheduler="exact"))
    payload = ("origkey", request, None, {})
    failure = JobFailure(key="origkey", kind="timeout", attempts=3)
    step = degrade_request(payload, failure, ())
    assert step is not None
    (key, new_request, _, meta), label = step
    assert label == "exact->sms"
    assert key == "origkey"  # stored under the *original* key
    assert new_request.options.scheduler == "sms"
    assert meta == {"degraded": "exact->sms", "degraded_after": "timeout"}
    # Each rung fires at most once.
    assert degrade_request(payload, failure, ("exact->sms",)) is None


def test_degrade_request_error_falls_back_to_reference_sim():
    request = RunRequest("g721dec", l0_config(8), SimOptions(fast_sim=True))
    failure = JobFailure(key="k", kind="error", attempts=1)
    step = degrade_request(("k", request, None, {}), failure, ())
    assert step is not None
    (_, new_request, _, meta), label = step
    assert label == "fast->reference"
    assert new_request.options.fast_sim is False
    assert meta["degraded_after"] == "error"
    # SMS jobs that merely time out have no cheaper scheduler to try.
    sms = RunRequest("g721dec", l0_config(8), SimOptions(scheduler="sms"))
    timeout = JobFailure(key="k", kind="timeout", attempts=3)
    assert degrade_request(("k", sms, None, {}), timeout, ()) is None


# ----------------------------------------------------------------------
# SupervisedExecutor (sync facade)
# ----------------------------------------------------------------------


def test_supervised_executor_matches_serial_on_toy_fn():
    items = list(range(7)) + [3]  # a duplicate item must not collide
    supervised = SupervisedExecutor(2, policy=FAST).map(items, fn=toy_double)
    assert supervised == SerialExecutor().map(items, fn=toy_double)


def test_supervised_executor_runs_real_requests_byte_identically():
    options = SimOptions(sim_cap=25)
    requests = [
        RunRequest("g721dec", unified_config(), options),
        RunRequest("g721dec", l0_config(4), options),
    ]
    from repro.pipeline.cache import result_fingerprint

    serial = Session(options=options).run_many(requests)
    supervised = Session(
        options=options, executor=SupervisedExecutor(2, policy=FAST)
    ).run_many(requests)
    assert [result_fingerprint(r) for r in supervised] == [
        result_fingerprint(r) for r in serial
    ]


def test_request_error_carries_key_through_executors():
    request = RunRequest("no-such-benchmark", unified_config(), SimOptions())
    with pytest.raises(RequestError) as excinfo:
        SerialExecutor().map([request])
    assert excinfo.value.key == request.key
    assert excinfo.value.description["benchmark"] == "no-such-benchmark"
    # ... and through the supervised pool (pickled across the pipe).
    with pytest.raises(JobFailureError) as dead:
        SupervisedExecutor(2, policy=FAST).map([request, request])
    assert request.key[:12] in str(dead.value) or "no-such-benchmark" in str(
        dead.value
    )


# ----------------------------------------------------------------------
# Checkpoint
# ----------------------------------------------------------------------


def test_checkpoint_round_trips_spec_done_and_dead(tmp_path):
    path = tmp_path / "ckpt.json"
    ckpt = SweepCheckpoint(path=path, spec={"benchmarks": ["g721dec"], "grid": "smoke"})
    ckpt.mark_done("a" * 64)
    ckpt.mark_dead(
        JobFailure(key="b" * 64, kind="hung", attempts=4, detail="wedged")
    )
    ckpt.flush()
    loaded = SweepCheckpoint.load(path)
    assert loaded is not None
    assert loaded.spec == ckpt.spec
    assert loaded.done == {"a" * 64}
    assert loaded.dead["b" * 64].kind == "hung"
    assert loaded.remaining(["a" * 64, "b" * 64, "c" * 64]) == ["b" * 64, "c" * 64]


def test_checkpoint_corruption_means_start_fresh(tmp_path):
    path = tmp_path / "ckpt.json"
    path.write_text("{ torn mid-writ")
    assert SweepCheckpoint.load(path) is None
    assert SweepCheckpoint.load(tmp_path / "absent.json") is None
    # Wrong schema version is also "no checkpoint", not a crash.
    path.write_text(json.dumps({"schema": 999, "spec": {}, "done": [], "dead": {}}))
    assert SweepCheckpoint.load(path) is None


def test_checkpoint_done_supersedes_dead(tmp_path):
    ckpt = SweepCheckpoint(path=tmp_path / "c.json")
    ckpt.mark_dead(JobFailure(key="k", kind="crash", attempts=3))
    ckpt.mark_done("k")  # a later retry succeeded
    ckpt.flush()
    loaded = SweepCheckpoint.load(tmp_path / "c.json")
    assert loaded.done == {"k"} and not loaded.dead


# ----------------------------------------------------------------------
# Sharded result store
# ----------------------------------------------------------------------


def _blob_store(path, width=1):
    return ShardedKeyedFileStore(
        path, ".bin", lambda v: v, lambda b: b, width=width
    )


KEY_A = "a" + "0" * 63
KEY_B = "b" + "0" * 63


def test_sharded_store_places_entries_by_key_prefix(tmp_path):
    store = _blob_store(tmp_path / "store")
    store.save(KEY_A, b"alpha")
    store.save(KEY_B, b"beta")
    assert (tmp_path / "store" / "a" / f"{KEY_A}.bin").is_file()
    assert (tmp_path / "store" / "b" / f"{KEY_B}.bin").is_file()
    assert store.load(KEY_A) == b"alpha"
    assert set(store.entries()) == {KEY_A, KEY_B}
    assert store.total_bytes() == len(b"alpha") + len(b"beta")
    assert detect_shard_width(tmp_path / "store") == 1


def test_sharded_store_reads_never_create_shard_dirs(tmp_path):
    store = _blob_store(tmp_path / "store")
    assert store.load("c" + "0" * 63) is None
    assert list((tmp_path / "store").iterdir()) == []  # no 'c/' littered
    assert store.entries() == {}
    report = store.gc(max_bytes=0)
    assert report.entries_before == 0
    assert list((tmp_path / "store").iterdir()) == []


def test_sharded_store_verify_drops_torn_entries(tmp_path):
    store = _blob_store(tmp_path / "store")
    decoded_ok = b'{"good": true}'
    store._decode = lambda b: json.loads(b)  # corrupt = undecodable JSON
    store._shards.clear()
    store.save(KEY_A, decoded_ok)
    store.save(KEY_B, b'{"also": "good"}')
    truncate_entry(store, KEY_B, b'{"also": "good"}')
    report = store.verify()
    assert report.ok == 1
    assert report.corrupt == [KEY_B]
    assert store.load(KEY_B) is None


def test_result_cache_autodetects_sharded_layout(tmp_path):
    from repro.sim.stats import ProgramResult

    sharded = ResultCache(tmp_path / "rc", shard_width=1)
    result = ProgramResult(
        benchmark="toy", arch="l0", meta={"degraded": "exact->sms"}
    )
    key = "d" * 64
    sharded.put(key, result)
    reopened = ResultCache(tmp_path / "rc")  # no width given: detected
    assert isinstance(reopened.store, ShardedKeyedFileStore)
    loaded = reopened.get(key)
    assert loaded == result
    assert loaded.meta == {"degraded": "exact->sms"}  # schema v4 round-trip


def test_sharded_gc_splits_budget_across_shards(tmp_path):
    store = _blob_store(tmp_path / "store")
    for prefix in "abcd":
        store.save(prefix + "0" * 63, b"x" * 100)
    report = store.gc(max_bytes=0, min_age_s=0.0)
    assert report.entries_before == 4
    assert report.entries_after == 0
    assert len(report.evicted) == 4


# ----------------------------------------------------------------------
# Sweep specs + drill
# ----------------------------------------------------------------------


def test_sweep_spec_round_trips_to_requests():
    spec = sweep_spec(["g721dec"], "smoke", sim_cap=40)
    assert json.loads(json.dumps(spec)) == spec  # checkpoint-journalable
    requests = requests_from_spec(spec)
    assert len(requests) == 2  # smoke grid: unified + l0-8
    assert {r.benchmark for r in requests} == {"g721dec"}
    assert all(r.options.sim_cap == 40 for r in requests)
    with pytest.raises(ValueError, match="unknown grid"):
        sweep_spec(["g721dec"], "nope")


def test_chaos_drill_small(tmp_path):
    """Tier-1 drill: SIGKILL + torn write, concurrent clients, byte
    identity against a serial run, zero duplicate simulations."""
    report = run_drill(
        seed=1,
        workers=2,
        clients=3,
        benchmarks=("g721dec",),
        grid="smoke",
        sim_cap=40,
        kills=1,
        hangs=0,  # the hang path costs seconds; covered by toy tests + slow drill
        truncates=1,
        phases=("chaos",),
        out_dir=tmp_path,
    )
    assert report["ok"], report["failures"]
    stats = report["chaos"]["supervisor"]
    assert stats["crashes"] >= 1
    assert stats["duplicate_simulations"] == 0
    assert report["chaos"]["coalesced"] > 0
    assert len(report["chaos"]["verify"]["corrupt"]) == 1


@pytest.mark.slow
def test_chaos_drill_full(tmp_path):
    """The acceptance drill: kill + hang + truncate under 4 concurrent
    clients, then a mid-sweep server kill and checkpoint resume."""
    report = run_drill(
        seed=0,
        workers=3,
        clients=4,
        benchmarks=("g721dec", "gsmdec"),
        grid="fig5",
        sim_cap=60,
        phases=("chaos", "resume"),
        out_dir=tmp_path,
    )
    assert report["ok"], report["failures"]
