"""Negative tests: the schedule validator must catch broken schedules.

Every check the property tests rely on ("validate() == []") is only as
good as the validator; these tests corrupt valid schedules in specific
ways and assert the right violation is reported.
"""

import copy

import pytest

from repro.ir import build_ddg
from repro.machine import unified_config
from repro.scheduler import compile_loop

from repro.workloads.kernels import make_saxpy


@pytest.fixture
def compiled():
    return compile_loop(make_saxpy(), unified_config())


def test_valid_schedule_is_clean(compiled):
    assert compiled.schedule.validate(compiled.ddg) == []


def test_dependence_violation_detected(compiled):
    sched = compiled.schedule
    # Move a consumer to cycle 0 — before its producer's result.
    fadd = next(
        op for op in sched.placed.values() if op.instr.opcode.mnemonic == "fadd"
    )
    fadd.start = 0
    problems = sched.validate(compiled.ddg)
    assert any("value ready" in p for p in problems)


def test_fu_oversubscription_detected(compiled):
    sched = compiled.schedule
    loads = [op for op in sched.placed.values() if op.instr.is_load]
    a, b = loads[0], loads[1]
    b.cluster = a.cluster
    b.start = a.start  # two memory ops, same cluster, same row
    problems = sched.validate(compiled.ddg)
    assert any("oversubscribed" in p for p in problems)


def test_missing_comm_detected(compiled):
    sched = compiled.schedule
    # Teleport a producer into another cluster without a comm.
    fmul = next(
        op for op in sched.placed.values() if op.instr.opcode.mnemonic == "fmul"
    )
    fmul.cluster = (fmul.cluster + 1) % 4
    problems = sched.validate(compiled.ddg)
    assert any("no comm" in p or "oversubscribed" in p for p in problems)


def test_comm_before_production_detected(compiled):
    sched = compiled.schedule
    if not sched.comms:
        pytest.skip("schedule has no cross-cluster values")
    comm = sched.comms[0]
    comm.start = -100
    problems = sched.validate(compiled.ddg)
    assert any("before its value" in p for p in problems)


def test_bus_oversubscription_detected(compiled):
    sched = compiled.schedule
    if not sched.comms:
        pytest.skip("schedule has no cross-cluster values")
    template = sched.comms[0]
    for _ in range(5):  # five transfers in one row > 4 buses
        clone = copy.copy(template)
        sched.comms.append(clone)
    problems = sched.validate(compiled.ddg)
    assert any("buses oversubscribed" in p for p in problems)


def test_unplaced_instruction_detected(compiled):
    sched = compiled.schedule
    uid = next(iter(sched.placed))
    del sched.placed[uid]
    problems = sched.validate(compiled.ddg)
    assert any("unplaced" in p for p in problems)
