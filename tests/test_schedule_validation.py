"""Negative tests: the schedule validator must catch broken schedules.

Every check the property tests rely on ("validate() == []") is only as
good as the validator; these tests corrupt valid schedules in specific
ways and assert the right *diagnostic code* is reported.  Codes are the
stable contract (see ``repro.analysis.CODES``); message text is not.
"""

import copy

import pytest

from repro.analysis import Diagnostic
from repro.machine import unified_config
from repro.scheduler import compile_loop

from repro.workloads.kernels import make_saxpy


def codes(problems):
    assert all(isinstance(p, Diagnostic) for p in problems)
    return {p.code for p in problems}


@pytest.fixture
def compiled():
    return compile_loop(make_saxpy(), unified_config())


def test_valid_schedule_is_clean(compiled):
    assert compiled.schedule.validate(compiled.ddg) == []


def test_diagnostics_carry_provenance_and_legacy_text(compiled):
    sched = compiled.schedule
    fadd = next(
        op for op in sched.placed.values() if op.instr.opcode.mnemonic == "fadd"
    )
    fadd.start = 0
    problems = sched.validate(compiled.ddg)
    assert problems
    d = next(p for p in problems if p.code == "A002")
    assert d.loop == sched.loop_name
    # The __str__ shim keeps the legacy message text for old consumers.
    assert "value ready" in str(d)
    assert d.code in d.render() and str(d) in d.render()


def test_dependence_violation_detected(compiled):
    sched = compiled.schedule
    # Move a consumer to cycle 0 — before its producer's result.
    fadd = next(
        op for op in sched.placed.values() if op.instr.opcode.mnemonic == "fadd"
    )
    fadd.start = 0
    assert "A002" in codes(sched.validate(compiled.ddg))


def test_fu_oversubscription_detected(compiled):
    sched = compiled.schedule
    loads = [op for op in sched.placed.values() if op.instr.is_load]
    a, b = loads[0], loads[1]
    b.cluster = a.cluster
    b.start = a.start  # two memory ops, same cluster, same row
    assert "A006" in codes(sched.validate(compiled.ddg))


def test_missing_comm_detected(compiled):
    sched = compiled.schedule
    # Teleport a producer into another cluster without a comm.
    fmul = next(
        op for op in sched.placed.values() if op.instr.opcode.mnemonic == "fmul"
    )
    fmul.cluster = (fmul.cluster + 1) % 4
    assert codes(sched.validate(compiled.ddg)) & {"A003", "A006"}


def test_comm_before_production_detected(compiled):
    sched = compiled.schedule
    if not sched.comms:
        pytest.skip("schedule has no cross-cluster values")
    comm = sched.comms[0]
    comm.start = -100
    assert "A004" in codes(sched.validate(compiled.ddg))


def test_comm_src_cluster_mismatch_detected(compiled):
    sched = compiled.schedule
    if not sched.comms:
        pytest.skip("schedule has no cross-cluster values")
    comm = sched.comms[0]
    comm.src_cluster = (comm.src_cluster + 1) % 4
    assert "A005" in codes(sched.validate(compiled.ddg))


def test_bus_oversubscription_detected(compiled):
    sched = compiled.schedule
    if not sched.comms:
        pytest.skip("schedule has no cross-cluster values")
    template = sched.comms[0]
    for _ in range(5):  # five transfers in one row > 4 buses
        clone = copy.copy(template)
        sched.comms.append(clone)
    assert "A007" in codes(sched.validate(compiled.ddg))


def test_unplaced_instruction_detected(compiled):
    sched = compiled.schedule
    uid = next(iter(sched.placed))
    del sched.placed[uid]
    assert "A001" in codes(sched.validate(compiled.ddg))
