"""Tests for the lock-step cycle-level executor and the program runner."""

import pytest

from repro.isa import MemoryLayout
from repro.machine import l0_config, unified_config
from repro.scheduler import compile_loop
from repro.sim import (
    INVALIDATE_OVERHEAD,
    LoopExecutor,
    SimOptions,
    make_memory,
    run_loop,
    run_program,
)
from repro.workloads import build, kernels

from repro.workloads.kernels import make_dpcm, make_saxpy


def execute(loop, config, iterations=None, **compile_kwargs):
    compiled = compile_loop(loop, config, **compile_kwargs)
    memory = make_memory(config)
    layout = MemoryLayout(align=config.l1_block)
    executor = LoopExecutor(compiled, memory, layout)
    result = executor.run(iterations or compiled.loop.trip_count)
    return compiled, memory, result


class TestComputeTime:
    def test_no_stall_when_l1_always_hits_scheduled_latency(self):
        """Baseline on an L1-resident loop: only cold misses stall."""
        loop = make_saxpy(trip=512, n=256)  # 2KB arrays, L1-resident
        compiled, memory, result = execute(loop, unified_config())
        sched = compiled.schedule
        expected_compute = (compiled.loop.trip_count - 1) * sched.ii + sched.span
        assert result.compute_cycles == expected_compute
        # Stalls only from the ~32+32 cold block misses (+10 each, lock-step).
        assert 0 < result.stall_cycles <= 64 * 10

    def test_warm_run_has_no_stalls(self):
        loop = make_saxpy(trip=512, n=256)
        config = unified_config()
        compiled = compile_loop(loop, config)
        memory = make_memory(config)
        layout = MemoryLayout(align=config.l1_block)
        executor = LoopExecutor(compiled, memory, layout)
        executor.run(compiled.loop.trip_count)
        warm = executor.run(compiled.loop.trip_count, start_cycle=10_000)
        assert warm.stall_cycles == 0

    def test_l0_recurrence_loop_beats_baseline(self):
        loop = make_dpcm(trip=512, n=512)
        base_c, _, base_r = execute(loop, unified_config(), unroll_factor=1)
        l0_c, _, l0_r = execute(make_dpcm(trip=512, n=512), l0_config(8),
                                unroll_factor=1)
        assert l0_c.ii < base_c.ii
        assert l0_r.total_cycles < base_r.total_cycles

    def test_late_loads_counted(self):
        loop = make_saxpy(trip=128, n=4096)  # 16KB streams: L1 misses
        _, _, result = execute(loop, unified_config())
        assert result.late_loads > 0

    def test_iterations_must_be_positive(self):
        loop = make_saxpy()
        compiled = compile_loop(loop, unified_config())
        memory = make_memory(unified_config())
        executor = LoopExecutor(compiled, memory, MemoryLayout())
        with pytest.raises(ValueError):
            executor.run(0)

    def test_stall_history_shape(self):
        loop = make_saxpy(trip=64, n=256)
        compiled = compile_loop(loop, unified_config())
        memory = make_memory(unified_config())
        executor = LoopExecutor(compiled, memory, MemoryLayout())
        result = executor.run(16)
        history = executor.last_stall_by_iteration
        assert len(history) == 16
        assert sum(history) == result.stall_cycles


class TestCoherenceAtRuntime:
    def test_compiled_schedules_never_violate_coherence(self):
        """The compiler's 1C/NL0 + invalidation keeps L0 reads fresh."""
        for loop_maker in (make_saxpy, make_dpcm):
            loop = loop_maker(trip=256, n=512)
            config = l0_config(8)
            compiled = compile_loop(loop, config)
            memory = make_memory(config)
            layout = MemoryLayout(align=config.l1_block)
            executor = LoopExecutor(compiled, memory, layout)
            executor.run(compiled.loop.trip_count)
            assert memory.stats.coherence_violations == 0

    def test_inplace_update_loop_coherent(self):
        loop = kernels.stream_map(
            "inplace", trip=256, n=512, elem=2, taps=1, alu_depth=3, in_place=True
        )
        config = l0_config(8)
        compiled = compile_loop(loop, config)
        memory = make_memory(config)
        executor = LoopExecutor(compiled, memory, MemoryLayout(align=32))
        executor.run(compiled.loop.trip_count)
        assert memory.stats.coherence_violations == 0


class TestRunLoop:
    def test_invocation_scaling(self):
        loop = make_saxpy(trip=128, n=256)
        config = l0_config(8)
        compiled = compile_loop(loop, config)
        memory = make_memory(config)
        layout = MemoryLayout(align=config.l1_block)
        result, clock = run_loop(compiled, memory, layout, invocations=5)
        assert result.invocations == 5
        single = (compiled.loop.trip_count - 1) * compiled.ii + compiled.schedule.span
        assert result.compute_cycles == 5 * (single + INVALIDATE_OVERHEAD)
        assert clock > 0

    def test_trip_extrapolation(self):
        loop = make_saxpy(trip=4096, n=256)
        config = unified_config()
        compiled = compile_loop(loop, config)
        memory = make_memory(config)
        layout = MemoryLayout(align=config.l1_block)
        options = SimOptions(sim_cap=200)
        result, _ = run_loop(compiled, memory, layout, options=options)
        trip = compiled.loop.trip_count
        assert result.compute_cycles == (trip - 1) * compiled.ii + compiled.schedule.span

    def test_l0_flushed_between_invocations(self):
        loop = make_saxpy(trip=64, n=256)
        config = l0_config(8)
        compiled = compile_loop(loop, config)
        memory = make_memory(config)
        layout = MemoryLayout(align=config.l1_block)
        run_loop(compiled, memory, layout, invocations=2)
        assert memory.stats.l0.invalidate_alls >= 2 * config.n_clusters


class TestRunProgram:
    def test_program_aggregates_loops(self):
        bench = build("g721dec")
        result = run_program(bench, unified_config(), options=SimOptions(sim_cap=300))
        assert result.benchmark == "g721dec"
        assert len(result.loops) == len(bench.loops)
        assert result.total_cycles == sum(l.total_cycles for l in result.loops)

    def test_determinism(self):
        options = SimOptions(sim_cap=200)
        a = run_program(build("gsmdec"), l0_config(8), options=options)
        b = run_program(build("gsmdec"), l0_config(8), options=options)
        assert a.total_cycles == b.total_cycles
        assert a.stall_cycles == b.stall_cycles

    def test_average_unroll_factor_weighted(self):
        result = run_program(
            build("g721dec"), l0_config(8), options=SimOptions(sim_cap=200)
        )
        assert 1.0 <= result.average_unroll_factor <= 4.0
