"""Figure 6: mapping mix, L0 hit rate and average unroll factor."""

from repro.eval import fig6, render_fig6


def test_fig6(benchmark, ctx):
    rows = benchmark.pedantic(fig6, args=(ctx,), rounds=1, iterations=1)
    print()
    print(render_fig6(rows))
    for row in rows:
        # Hit rates are high (the paper: mostly above 95%; epicdec,
        # mpeg2dec, pegwit and rasta dip below).
        assert row["l0_hit_rate"] > 0.90
        assert 1.0 <= row["avg_unroll"] <= 4.0
        assert abs(row["linear_ratio"] + row["interleaved_ratio"] - 1.0) < 1e-9
    # Both mapping modes are exercised across the suite, and interleaved
    # mapping appears only where it can (the paper: it requires the
    # loop to be unrolled N times).
    assert any(r["interleaved_ratio"] > 0.5 for r in rows)
    assert any(r["linear_ratio"] > 0.3 for r in rows)
    for row in rows:
        if row["avg_unroll"] < 1.05:
            assert row["interleaved_ratio"] < 0.05
