"""Figure 7: L0 buffers vs MultiVLIW vs the word-interleaved cache."""

from repro.eval import AMEAN, fig7, render_fig7


def test_fig7(benchmark, ctx):
    series = benchmark.pedantic(fig7, args=(ctx,), rounds=1, iterations=1)
    print()
    print(render_fig7(series))

    def amean(label):
        return next(r for r in series[label] if r.benchmark == AMEAN).total

    l0 = amean("8-entry L0 buffers")
    multivliw = amean("MultiVLIW")
    inter1 = amean("Interleaved 1")
    inter2 = amean("Interleaved 2")
    # Paper's ranking: the proposed L0 design and MultiVLIW are the two
    # strong configurations; both clearly beat the word-interleaved
    # cache.  (Deviation from the paper: our MultiVLIW model lands a
    # little *behind* L0 rather than marginally ahead — see
    # EXPERIMENTS.md.)
    assert l0 < inter1 and l0 < inter2
    assert multivliw < inter1 and multivliw < inter2
    assert l0 < 1.0
