"""Compiler throughput: modulo-scheduling speed across the suite.

Not a paper artifact — a regression guard on the scheduler's cost
(ejection storms or window bugs show up here as big slowdowns).
Compiles through a fresh per-call cache so every iteration measures the
real pipeline, not a compile-cache lookup.
"""

from repro.machine import l0_config, unified_config
from repro.pipeline import CompiledLoopCache, compile_cached
from repro.workloads import build


def _compile_suite(config):
    cache = CompiledLoopCache()
    compiled = []
    for name in ("g721dec", "jpegdec", "rasta"):
        for spec in build(name).loops:
            compiled.append(compile_cached(spec.loop, config, cache=cache))
    return compiled


def test_compile_throughput_baseline(benchmark):
    results = benchmark(_compile_suite, unified_config())
    assert all(r.schedule.validate(r.ddg) == [] for r in results)


def test_compile_throughput_l0(benchmark):
    results = benchmark(_compile_suite, l0_config(8))
    assert all(r.schedule.validate(r.ddg) == [] for r in results)
