"""Section-5.2 text experiments: candidate selection and prefetch distance."""

from repro.eval import (
    ablation_all_candidates,
    ablation_prefetch_distance,
    render_ablation,
)


def test_all_candidates_ablation(benchmark, ctx):
    """Selective slack-based marking vs marking every candidate (4-entry).

    The paper reports marking everything overflows 4-entry buffers
    (+6%); in this reproduction the effect concentrates on the
    multi-stream benchmarks and is roughly cost-neutral elsewhere.
    """
    rows = benchmark.pedantic(
        ablation_all_candidates, args=(ctx,), rounds=1, iterations=1
    )
    print()
    print(
        render_ablation(
            rows,
            "Selective vs all-candidates (4-entry L0)",
            "selective",
            "all_candidates",
        )
    )
    for row in rows:
        assert row["ratio"] > 0.8  # marking everything is never a big win


def test_prefetch_distance_ablation(benchmark, ctx):
    """Prefetching two subblocks ahead (paper: epicdec -12%, rasta -4%)."""
    rows = benchmark.pedantic(
        ablation_prefetch_distance, args=(ctx,), rounds=1, iterations=1
    )
    print()
    print(
        render_ablation(
            rows, "Prefetch distance 1 vs 2", "distance_1", "distance_2"
        )
    )
    by_name = {row["benchmark"]: row for row in rows}
    # Deeper prefetch helps the small-II benchmarks.
    assert by_name["rasta"]["ratio"] <= 1.01
