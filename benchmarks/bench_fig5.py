"""Figure 5: normalized execution time vs number of L0 buffer entries.

Also covers the section-5.2 text experiment: 2-entry buffers (the paper
reports a 7% improvement there vs 16% at 8 entries).
"""

from repro.eval import AMEAN, fig5, render_fig5


def test_fig5(benchmark, ctx):
    series = benchmark.pedantic(
        fig5, args=(ctx,), kwargs={"sizes": (2, 4, 8, 16, None)},
        rounds=1, iterations=1,
    )
    print()
    print(render_fig5(series))

    def amean(label):
        return next(r for r in series[label] if r.benchmark == AMEAN).total

    # Shape assertions from the paper's evaluation:
    # 8-entry buffers clearly beat the no-L0 baseline on average ...
    assert amean("8 entries") < 0.95
    # ... and small buffers are worse than 8-entry ones.
    assert amean("2 entries") >= amean("8 entries")
    assert amean("4 entries") >= amean("8 entries")
    # 16 entries and unbounded sit on the 8-entry plateau.
    assert abs(amean("16 entries") - amean("8 entries")) < 0.08
    # jpegdec's pathological loop: worse than the baseline with small
    # buffers (LRU thrash), still above 1.0 at 8/16 entries.
    jpeg8 = next(r for r in series["8 entries"] if r.benchmark == "jpegdec")
    jpeg4 = next(r for r in series["4 entries"] if r.benchmark == "jpegdec")
    assert jpeg4.total >= jpeg8.total >= 1.0
    # g721dec (recurrence-dominated) is a big winner.
    g721 = next(r for r in series["8 entries"] if r.benchmark == "g721dec")
    assert g721.total < 0.85
