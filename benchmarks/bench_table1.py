"""Table 1: benchmark stride statistics (S / SG / SO percentages)."""

from repro.eval import render_table1, table1


def test_table1(benchmark):
    rows = benchmark(table1)
    assert len(rows) == 13
    for row in rows:
        # The synthetic suite tracks the paper's published profile.
        assert abs(row["S"] - row["paper_S"]) <= 12
    print()
    print(render_table1(rows))
