"""Coherence-scheme ablation: NL0 vs 1C vs PSR on dependent-set loops.

Exercises the paper's section-4.1 trade-offs: 1C restricts cluster
assignment but keeps L0 latencies; PSR frees the loads at the cost of
replicated stores (memory slots + a bus broadcast); NL0 surrenders the
buffers entirely.  The correctness invariant in all three: zero stale
L0 reads.
"""

from repro.ir import LoopBuilder
from repro.isa import MemoryLayout
from repro.machine import l0_config
from repro.scheduler import compile_loop
from repro.sim import make_memory, run_loop


def history_loop(trip=800):
    b = LoopBuilder("history", trip_count=trip)
    y = b.array("y", 2048, 2)
    k = b.live_in("k")
    a = b.load(y, stride=1, offset=0, tag="ld0")
    c = b.load(y, stride=1, offset=1, tag="ld1")
    s = b.iadd(a, c)
    t = b.imul(s, k)
    b.store(y, t, stride=1, offset=2, tag="st")
    return b.build()


def _run(allow_psr: bool, entries: int | None = 8):
    config = l0_config(entries)
    compiled = compile_loop(history_loop(), config, allow_psr=allow_psr)
    memory = make_memory(config)
    result, _ = run_loop(
        compiled, memory, MemoryLayout(align=config.l1_block), invocations=2
    )
    assert memory.stats.coherence_violations == 0
    return compiled, result


def test_one_cluster_scheme(benchmark):
    compiled, result = benchmark.pedantic(
        _run, args=(False,), rounds=1, iterations=1
    )
    # 1C pins the dependent set to one cluster.
    clusters = {
        op.cluster
        for op in compiled.schedule.placed.values()
        if op.instr.is_memory and op.latency == 1
    }
    assert len(clusters) <= 1
    assert not compiled.schedule.replicas


def test_psr_scheme(benchmark):
    compiled, result = benchmark.pedantic(
        _run, args=(True,), rounds=1, iterations=1
    )
    # PSR replicates the store into the other clusters.
    n = compiled.schedule.config.n_clusters
    stores = [
        op for op in compiled.schedule.placed.values() if op.instr.is_store
    ]
    assert len(compiled.schedule.replicas) == len(stores) * (n - 1)
    for replica in compiled.schedule.replicas:
        assert not replica.is_primary


def test_nl0_vs_1c_latency_difference(benchmark):
    def both():
        one_cluster = _run(False, entries=8)
        nl0ish = _run(False, entries=1)  # no room: set demoted toward NL0
        return one_cluster, nl0ish

    (oc_compiled, oc_result), (nl_compiled, nl_result) = benchmark.pedantic(
        both, rounds=1, iterations=1
    )
    # With buffers available, the recurrence-bound II is smaller.
    assert oc_compiled.ii <= nl_compiled.ii
