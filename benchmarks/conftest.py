"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures (or an
ablation the evaluation text describes) on a reduced but representative
setup: a subset of the 13 programs and a lower simulation cap, so the
full `pytest benchmarks/ --benchmark-only` run stays in the minutes
range.  `python -m repro.eval <experiment>` reproduces the full-size
versions.
"""

from __future__ import annotations

import os

import pytest

from repro.eval import ExperimentContext
from repro.sim import SimOptions

#: Subset spanning the behaviour classes: recurrence-dominated winners
#: (g721dec), prefetch-pathological (jpegdec), stall-bound low-L1-hit
#: (pegwitdec), other-stride heavy (mpeg2dec) and FP small-II (rasta).
QUICK_BENCHMARKS = ("g721dec", "jpegdec", "pegwitdec", "mpeg2dec", "rasta")

QUICK_CAP = 400


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    """Shared pipeline session for all benchmarks.

    Serial by default so per-benchmark timings stay comparable; set
    ``REPRO_BENCH_WORKERS`` (e.g. ``-1`` for all cores) to fan the
    simulation batches out across processes.
    """
    raw = os.environ.get("REPRO_BENCH_WORKERS", "").strip()
    try:
        workers = int(raw) if raw else None
    except ValueError:
        raise pytest.UsageError(
            f"REPRO_BENCH_WORKERS must be an integer, got {raw!r}"
        ) from None
    return ExperimentContext(
        options=SimOptions(sim_cap=QUICK_CAP),
        benchmarks=QUICK_BENCHMARKS,
        workers=workers,
    )
